package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/workloads"
)

// simBenchEntry is one row of BENCH_sim.json: the measured throughput of
// sim.Run on one workload, with or without event-driven cycle skipping.
type simBenchEntry struct {
	Name         string  `json:"name"`
	Bench        string  `json:"bench"`
	DisableSkip  bool    `json:"disable_skip"`
	NsPerOp      int64   `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// simBenchFile is the machine-readable perf trajectory CI uploads per PR.
type simBenchFile struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	Entries     []simBenchEntry    `json:"entries"`
	SkipSpeedup map[string]float64 `json:"skip_speedup"`
}

// simBenchCases mirrors BenchmarkSimulatorThroughput in bench_test.go: each
// workload under the Snake prefetcher, with fast-forwarding on and off.
var simBenchCases = []struct {
	name        string
	bench       string
	disableSkip bool
}{
	{"lps", "lps", false},
	{"mum", "mum", false},
	{"nw", "nw", false},
	{"lps-noskip", "lps", true},
	{"mum-noskip", "mum", true},
	{"nw-noskip", "nw", true},
}

// writeSimBench measures simulator throughput and writes path.
func writeSimBench(path string) error {
	out := simBenchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		SkipSpeedup: make(map[string]float64),
	}
	nsPerOp := make(map[string]int64)
	for _, c := range simBenchCases {
		k, err := workloads.Build(c.bench, workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8})
		if err != nil {
			return err
		}
		cfg := config.Scaled(4, 64)
		disable := c.disableSkip
		var cycles int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			cycles = 0
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(k, sim.Options{
					Config:        cfg,
					NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
					DisableSkip:   disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
		})
		e := simBenchEntry{
			Name:         c.name,
			Bench:        c.bench,
			DisableSkip:  c.disableSkip,
			NsPerOp:      r.NsPerOp(),
			CyclesPerSec: float64(cycles) / r.T.Seconds(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
		}
		out.Entries = append(out.Entries, e)
		nsPerOp[c.name] = e.NsPerOp
		fmt.Fprintf(os.Stderr, "snakebench: %-12s %12d ns/op %12.0f cycles/s %8d allocs/op\n",
			c.name, e.NsPerOp, e.CyclesPerSec, e.AllocsPerOp)
	}
	for _, c := range simBenchCases {
		if c.disableSkip {
			continue
		}
		if slow, ok := nsPerOp[c.name+"-noskip"]; ok && nsPerOp[c.name] > 0 {
			out.SkipSpeedup[c.name] = float64(slow) / float64(nsPerOp[c.name])
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snakebench: wrote %s\n", path)
	return nil
}
