// Command snakesim runs one benchmark — or one multi-kernel application —
// under one prefetching mechanism and prints the resulting statistics.
//
// Usage:
//
//	snakesim -bench lps -pf snake
//	snakesim -bench lib -pf baseline -sms 4 -warps 32 -ctas 48 -iters 12
//	snakesim -app warmup -pf snake -chain      # multi-kernel launch graph
//	snakesim -app cotenant -pf snake -split 2  # two tenants, SMs 0-1 vs rest
package main

import (
	"flag"
	"fmt"
	"os"

	"snake/internal/config"
	"snake/internal/harness"
	"snake/internal/profiling"
	"snake/internal/sim"
	"snake/internal/stats"
	"snake/internal/workloads"
)

func main() {
	var (
		bench      = flag.String("bench", "lps", "benchmark name (see -list)")
		app        = flag.String("app", "", "application workload instead of -bench (see -list)")
		chain      = flag.Bool("chain", false, "persist prefetcher chain tables across kernel launches (-app only)")
		split      = flag.Int("split", 0, "tenant-0 SM share for partitioned apps (0: half)")
		pf         = flag.String("pf", "baseline", "prefetching mechanism (see -list)")
		sms        = flag.Int("sms", 4, "number of SMs")
		warps      = flag.Int("warps", 32, "warp slots per SM")
		ctas       = flag.Int("ctas", 0, "CTA count (0: default scale)")
		wpc        = flag.Int("wpc", 0, "warps per CTA (0: default scale)")
		iters      = flag.Int("iters", 0, "loop-depth multiplier (0: default scale)")
		list       = flag.Bool("list", false, "list benchmarks and mechanisms")
		noskip     = flag.Bool("noskip", false, "disable event-driven cycle skipping (same stats, slower)")
		parallel   = flag.Int("parallel", 1, "SM-shard workers per simulated cycle (same stats at any value)")
		slack      = flag.Int("slack", 0, "bounded-slack epoch length in cycles (0: auto from config; same stats at any value)")
		slackaudit = flag.Bool("slackaudit", false, "print the config's slack-bound derivation and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		fmt.Println("benchmarks:", workloads.Names())
		fmt.Println("apps:", workloads.AppNames())
		fmt.Println("mechanisms:", harness.MechanismNames())
		return
	}

	if *slackaudit {
		printSlackAudit(config.Scaled(*sms, *warps))
		return
	}

	sc := workloads.Scale{CTAs: *ctas, WarpsPerCTA: *wpc, Iters: *iters}
	factory, err := harness.Mechanism(*pf)
	if err != nil {
		fatal(err)
	}
	opt := sim.Options{
		Config:        config.Scaled(*sms, *warps),
		NewPrefetcher: factory,
		DisableSkip:   *noskip,
		Parallelism:   *parallel,
		SlackWindow:   *slack,
	}

	var s *stats.Sim
	var appRes *sim.AppResult
	var slackRes sim.SlackInfo
	name := *bench
	if *app != "" {
		a, _, err := workloads.Shared().App(*app, sc, *sms, *split)
		if err != nil {
			fatal(err)
		}
		opt.ChainPersistence = *chain
		appRes, err = sim.RunApp(a, opt)
		if err != nil {
			fatal(err)
		}
		s = &appRes.Stats
		slackRes = appRes.Slack
		name = fmt.Sprintf("%s (%d launches, chain=%v)", *app, len(a.Launches), *chain)
	} else {
		k, err := workloads.Shared().Kernel(*bench, sc)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(k, opt)
		if err != nil {
			fatal(err)
		}
		s = &res.Stats
		slackRes = res.Slack
		name = k.Name
	}
	fmt.Printf("benchmark        %s\n", name)
	fmt.Printf("mechanism        %s\n", *pf)
	fmt.Printf("slack            horizon=%d window=%d turnaround=%d (bound by %s%s)\n",
		slackRes.Horizon, slackRes.Window, slackRes.Turnaround, slackRes.BindingTerm,
		clampNote(slackRes))
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("instructions     %d\n", s.Insts)
	fmt.Printf("loads            %d\n", s.Loads)
	fmt.Printf("IPC              %.4f\n", s.IPC())
	fmt.Printf("L1 hit rate      %.1f%%\n", 100*s.L1HitRate())
	fmt.Printf("resv-fail rate   %.1f%%\n", 100*s.ReservationFailRate())
	fmt.Printf("bw utilization   %.1f%%\n", 100*s.BandwidthUtilization())
	fmt.Printf("mem-stall frac   %.1f%%\n", 100*s.MemStallFraction())
	fmt.Printf("coverage         %.1f%%\n", 100*s.Coverage())
	fmt.Printf("accuracy         %.1f%%\n", 100*s.Accuracy())
	fmt.Printf("pf issued        %d (useful %d, late %d, early-evicted %d, unused %d, dropped %d)\n",
		s.Pf.Issued, s.Pf.UsefulTimely, s.Pf.UsefulLate, s.Pf.EarlyEvicted, s.Pf.Unused, s.Pf.Dropped)
	fmt.Printf("L2 accesses      %d (hits %d, misses %d, in-flight merges %d)\n",
		s.L2Hits+s.L2Misses+s.L2Merges, s.L2Hits, s.L2Misses, s.L2Merges)
	fmt.Printf("dram reads       %d (row hits %d, row misses %d)\n", s.DRAMReads, s.DRAMRowHits, s.DRAMRowMisses)
	fmt.Printf("resfail causes   missq=%d mshr=%d victim=%d\n", s.ResFailMissQueue, s.ResFailMSHR, s.ResFailVictim)
	if appRes != nil {
		fmt.Printf("launches:\n")
		fmt.Printf("  %-3s %-10s %-6s %12s %12s %12s %10s %8s\n",
			"idx", "kernel", "tenant", "start", "retire", "insts", "ipc", "cov")
		for _, l := range appRes.Launches {
			fmt.Printf("  %-3d %-10s %-6d %12d %12d %12d %10.4f %7.1f%%\n",
				l.Index, l.Kernel, l.Tenant, l.StartCycle, l.RetireCycle,
				l.Stats.Insts, l.Stats.IPC(), 100*l.Stats.Coverage())
		}
		if len(appRes.Tenants) > 1 {
			fmt.Printf("tenants:\n")
			fmt.Printf("  %-3s %-8s %12s %10s %8s %8s\n",
				"id", "launches", "insts", "ipc", "cov", "l1hit")
			for _, tn := range appRes.Tenants {
				fmt.Printf("  %-3d %-8d %12d %10.4f %7.1f%% %7.1f%%\n",
					tn.ID, tn.Launches, tn.Stats.Insts, tn.Stats.IPC(),
					100*tn.Stats.Coverage(), 100*tn.Stats.L1HitRate())
			}
		}
	}
}

// clampNote annotates the slack line when the requested window exceeded the
// config's provable bound and was clamped down.
func clampNote(si sim.SlackInfo) string {
	if !si.Clamped {
		return ""
	}
	return fmt.Sprintf("; requested %d clamped", si.Requested)
}

// printSlackAudit prints the config's slack-bound derivation: every
// cross-unit latency term the audit considers, which one binds, and the
// resulting horizon and turnaround the engine will run with.
func printSlackAudit(cfg config.GPU) {
	a := cfg.SlackAudit()
	lim := a.Limiting()
	fmt.Printf("slack audit (bound = min cross-unit latency)\n")
	for _, t := range a.Terms {
		mark := " "
		if t.Name == lim.Name && t.Latency == lim.Latency {
			mark = "*"
		}
		fmt.Printf("  %s %-12s %6d  %s\n", mark, t.Name, t.Latency, t.Why)
	}
	fmt.Printf("bound            %d cycles (binding term: %s)\n", a.Bound, lim.Name)
	fmt.Printf("epoch horizon    %d cycles (miss-queue and store visibility delay)\n", a.Bound)
	fmt.Printf("turnaround       %d cycles (modeled injection residency, CTA redispatch)\n",
		min(a.Bound, sim.TurnaroundCap))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snakesim:", err)
	os.Exit(1)
}
