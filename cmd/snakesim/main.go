// Command snakesim runs one benchmark under one prefetching mechanism and
// prints the resulting statistics.
//
// Usage:
//
//	snakesim -bench lps -pf snake
//	snakesim -bench lib -pf baseline -sms 4 -warps 32 -ctas 48 -iters 12
package main

import (
	"flag"
	"fmt"
	"os"

	"snake/internal/config"
	"snake/internal/harness"
	"snake/internal/profiling"
	"snake/internal/sim"
	"snake/internal/workloads"
)

func main() {
	var (
		bench      = flag.String("bench", "lps", "benchmark name (see -list)")
		pf         = flag.String("pf", "baseline", "prefetching mechanism (see -list)")
		sms        = flag.Int("sms", 4, "number of SMs")
		warps      = flag.Int("warps", 32, "warp slots per SM")
		ctas       = flag.Int("ctas", 0, "CTA count (0: default scale)")
		wpc        = flag.Int("wpc", 0, "warps per CTA (0: default scale)")
		iters      = flag.Int("iters", 0, "loop-depth multiplier (0: default scale)")
		list       = flag.Bool("list", false, "list benchmarks and mechanisms")
		noskip     = flag.Bool("noskip", false, "disable event-driven cycle skipping (same stats, slower)")
		parallel   = flag.Int("parallel", 1, "SM-shard workers per simulated cycle (same stats at any value)")
		slack      = flag.Int("slack", 0, "bounded-slack epoch length in cycles (0: auto from config; same stats at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		fmt.Println("benchmarks:", workloads.Names())
		fmt.Println("mechanisms:", harness.MechanismNames())
		return
	}

	sc := workloads.Scale{CTAs: *ctas, WarpsPerCTA: *wpc, Iters: *iters}
	k, err := workloads.Shared().Kernel(*bench, sc)
	if err != nil {
		fatal(err)
	}
	factory, err := harness.Mechanism(*pf)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(k, sim.Options{
		Config:        config.Scaled(*sms, *warps),
		NewPrefetcher: factory,
		DisableSkip:   *noskip,
		Parallelism:   *parallel,
		SlackWindow:   *slack,
	})
	if err != nil {
		fatal(err)
	}
	s := &res.Stats
	fmt.Printf("benchmark        %s\n", k.Name)
	fmt.Printf("mechanism        %s\n", *pf)
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("instructions     %d\n", s.Insts)
	fmt.Printf("loads            %d\n", s.Loads)
	fmt.Printf("IPC              %.4f\n", s.IPC())
	fmt.Printf("L1 hit rate      %.1f%%\n", 100*s.L1HitRate())
	fmt.Printf("resv-fail rate   %.1f%%\n", 100*s.ReservationFailRate())
	fmt.Printf("bw utilization   %.1f%%\n", 100*s.BandwidthUtilization())
	fmt.Printf("mem-stall frac   %.1f%%\n", 100*s.MemStallFraction())
	fmt.Printf("coverage         %.1f%%\n", 100*s.Coverage())
	fmt.Printf("accuracy         %.1f%%\n", 100*s.Accuracy())
	fmt.Printf("pf issued        %d (useful %d, late %d, early-evicted %d, unused %d, dropped %d)\n",
		s.Pf.Issued, s.Pf.UsefulTimely, s.Pf.UsefulLate, s.Pf.EarlyEvicted, s.Pf.Unused, s.Pf.Dropped)
	fmt.Printf("L2 accesses      %d (hits %d, misses %d, in-flight merges %d)\n",
		s.L2Hits+s.L2Misses+s.L2Merges, s.L2Hits, s.L2Misses, s.L2Merges)
	fmt.Printf("dram reads       %d (row hits %d, row misses %d)\n", s.DRAMReads, s.DRAMRowHits, s.DRAMRowMisses)
	fmt.Printf("resfail causes   missq=%d mshr=%d victim=%d\n", s.ResFailMissQueue, s.ResFailMSHR, s.ResFailVictim)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snakesim:", err)
	os.Exit(1)
}
