package repro_test

import (
	"reflect"
	"testing"

	"snake/internal/config"
	"snake/internal/harness"
	"snake/internal/sim"
	"snake/internal/workloads"
)

// TestSkipEquivalenceGolden is the tentpole invariant of the event-driven
// fast-forward: simulating with cycle skipping enabled must produce
// bit-identical statistics to executing every cycle (Options.DisableSkip).
// It runs the full Table 2 benchmark suite under both the baseline and the
// Snake prefetcher and compares Result.Stats and every per-SM counter block
// with reflect.DeepEqual — any divergence, down to a single stall cycle,
// fails the test.
func TestSkipEquivalenceGolden(t *testing.T) {
	cfg := config.Scaled(2, 8)
	sc := workloads.Tiny()
	for _, bench := range workloads.Names() {
		for _, mech := range []string{"baseline", "snake"} {
			bench, mech := bench, mech
			t.Run(bench+"/"+mech, func(t *testing.T) {
				t.Parallel()
				assertSkipEquivalent(t, bench, sc, cfg, mech)
			})
		}
	}
}

// TestSkipEquivalenceMediumScale repeats the equivalence check at a larger
// scale on two representative workloads (one stencil, one irregular), where
// interconnect backpressure, MSHR pressure and Snake's throttle all engage,
// and adds mechanisms with distinct per-cycle behaviour: the magic-fill
// Ideal oracle and a Decoupled-wrapped MTA.
func TestSkipEquivalenceMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale equivalence runs take a few seconds")
	}
	cfg := config.Scaled(4, 32)
	sc := workloads.Scale{CTAs: 16, WarpsPerCTA: 4, Iters: 6}
	cases := []struct{ bench, mech string }{
		{"lps", "snake"},
		{"mum", "snake"},
		{"lps", "ideal"},
		{"mum", "mta+decoupled"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.bench+"/"+c.mech, func(t *testing.T) {
			t.Parallel()
			assertSkipEquivalent(t, c.bench, sc, cfg, c.mech)
		})
	}
}

// TestSkipEquivalenceGTOGreedyReset pins a regression: fast-forwarding must
// replay the fruitless scheduler pass of every elided cycle (GTO forgets its
// greedy warp), or after a skipped wait GTO resumes its greedy warp where
// per-cycle execution picks the oldest ready one. This configuration —
// default workload scale on 2 SMs x 16 warps — is one where the two choices
// demonstrably diverge.
func TestSkipEquivalenceGTOGreedyReset(t *testing.T) {
	assertSkipEquivalent(t, "lps", workloads.Scale{}, config.Scaled(2, 16), "snake")
}

func assertSkipEquivalent(t *testing.T, bench string, sc workloads.Scale, cfg config.GPU, mech string) {
	t.Helper()
	k, err := workloads.Build(bench, sc)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := harness.Mechanism(mech)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disableSkip bool) *sim.Result {
		res, err := sim.Run(k, sim.Options{
			Config:        cfg,
			NewPrefetcher: factory,
			DisableSkip:   disableSkip,
		})
		if err != nil {
			t.Fatalf("disableSkip=%v: %v", disableSkip, err)
		}
		return res
	}
	fast := run(false)
	slow := run(true)
	if !reflect.DeepEqual(fast.Stats, slow.Stats) {
		t.Errorf("aggregate stats diverge with skipping enabled:\n skip: %+v\n full: %+v", fast.Stats, slow.Stats)
	}
	if !reflect.DeepEqual(fast.PerSM, slow.PerSM) {
		for i := range fast.PerSM {
			if !reflect.DeepEqual(fast.PerSM[i], slow.PerSM[i]) {
				t.Errorf("SM %d stats diverge:\n skip: %+v\n full: %+v", i, fast.PerSM[i], slow.PerSM[i])
			}
		}
	}
}
