package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"snake/internal/config"
	"snake/internal/harness"
	"snake/internal/sim"
	"snake/internal/workloads"
)

// TestGoldenEquivalence is the tentpole invariant of the engine's two
// execution strategies: event-driven fast-forwarding (Options.DisableSkip)
// and sharded parallel execution (Options.Parallelism) must each produce
// statistics bit-identical to plain serial per-cycle simulation — and so
// must their combination. It runs the full Table 2 benchmark suite under
// both the baseline and the Snake prefetcher, simulates every (skip ×
// parallelism) variant, and compares Result.Stats and every per-SM counter
// block with reflect.DeepEqual — any divergence, down to a single stall
// cycle on one SM, fails the test.
func TestGoldenEquivalence(t *testing.T) {
	cfg := config.Scaled(4, 8) // 4 SMs: Parallelism=4 genuinely shards
	sc := workloads.Tiny()
	for _, bench := range workloads.Names() {
		for _, mech := range []string{"baseline", "snake"} {
			bench, mech := bench, mech
			t.Run(bench+"/"+mech, func(t *testing.T) {
				t.Parallel()
				assertEngineEquivalent(t, bench, sc, cfg, mech)
			})
		}
	}
}

// TestGoldenEquivalenceMediumScale repeats the equivalence check at a larger
// scale on two representative workloads (one stencil, one irregular), where
// interconnect backpressure, MSHR pressure and Snake's throttle all engage,
// and adds mechanisms with distinct per-cycle behaviour: the magic-fill
// Ideal oracle and a Decoupled-wrapped MTA.
func TestGoldenEquivalenceMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale equivalence runs take a few seconds")
	}
	cfg := config.Scaled(4, 32)
	sc := workloads.Scale{CTAs: 16, WarpsPerCTA: 4, Iters: 6}
	cases := []struct{ bench, mech string }{
		{"lps", "snake"},
		{"mum", "snake"},
		{"lps", "ideal"},
		{"mum", "mta+decoupled"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.bench+"/"+c.mech, func(t *testing.T) {
			t.Parallel()
			assertEngineEquivalent(t, c.bench, sc, cfg, c.mech)
		})
	}
}

// TestSkipEquivalenceGTOGreedyReset pins a regression: fast-forwarding must
// replay the fruitless scheduler pass of every elided cycle (GTO forgets its
// greedy warp), or after a skipped wait GTO resumes its greedy warp where
// per-cycle execution picks the oldest ready one. This configuration —
// default workload scale on 2 SMs x 16 warps — is one where the two choices
// demonstrably diverge.
func TestSkipEquivalenceGTOGreedyReset(t *testing.T) {
	assertEngineEquivalent(t, "lps", workloads.Scale{}, config.Scaled(2, 16), "snake")
}

// assertEngineEquivalent runs bench/mech under every engine strategy — per
// cycle vs fast-forwarded, serial vs parallel shards, freshly constructed vs
// a recycled engine — and demands bit-identical results. The reference is
// the plainest configuration: serial, no skipping, fresh construction.
func assertEngineEquivalent(t *testing.T, bench string, sc workloads.Scale, cfg config.GPU, mech string) {
	t.Helper()
	k, err := workloads.Build(bench, sc)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := harness.Mechanism(mech)
	if err != nil {
		t.Fatal(err)
	}
	// The pooled engine is pre-dirtied with a different benchmark so every
	// pooled variant below exercises true reinitialization, not first-run
	// construction.
	pooled := sim.NewEngine()
	dirty := "cp"
	if bench == "cp" {
		dirty = "lps"
	}
	dk, err := workloads.Build(dirty, workloads.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pooled.RunTagged(dk, sim.Options{Config: cfg, NewPrefetcher: factory}, mech); err != nil {
		t.Fatal(err)
	}
	run := func(disableSkip bool, parallelism int, reuse bool) *sim.Result {
		opt := sim.Options{
			Config:        cfg,
			NewPrefetcher: factory,
			DisableSkip:   disableSkip,
			Parallelism:   parallelism,
		}
		var res *sim.Result
		if reuse {
			res, err = pooled.RunTagged(k, opt, mech)
		} else {
			res, err = sim.Run(k, opt)
		}
		if err != nil {
			t.Fatalf("disableSkip=%v parallelism=%d reuse=%v: %v", disableSkip, parallelism, reuse, err)
		}
		return res
	}
	ref := run(true, 1, false)
	for _, v := range []struct {
		disableSkip bool
		parallelism int
		reuse       bool
	}{
		{false, 1, false}, // fast-forwarding
		{true, 4, false},  // parallel work units (shards + memory partitions)
		{false, 4, false}, // both composed
		{true, 12, false}, // one worker per work unit (4 SMs + 8 L2 partitions)
		{true, 1, true},   // recycled engine, plain serial
		{false, 4, true},  // recycled engine with both strategies composed
		{false, 12, true}, // recycled engine, maximally wide, fast-forwarding
	} {
		got := run(v.disableSkip, v.parallelism, v.reuse)
		label := fmt.Sprintf("skip=%v parallelism=%d reuse=%v", !v.disableSkip, v.parallelism, v.reuse)
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Errorf("%s: aggregate stats diverge from serial per-cycle run:\n got: %+v\n ref: %+v",
				label, got.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(got.PerSM, ref.PerSM) {
			for i := range got.PerSM {
				if !reflect.DeepEqual(got.PerSM[i], ref.PerSM[i]) {
					t.Errorf("%s: SM %d stats diverge:\n got: %+v\n ref: %+v",
						label, i, got.PerSM[i], ref.PerSM[i])
				}
			}
		}
	}
}
