// Package repro_test regenerates every table and figure of the Snake paper
// as Go benchmarks: one benchmark per experiment, each reporting the
// experiment's headline metric via b.ReportMetric. A process-wide memoized
// runner backs all benchmarks, so repeated iterations are cheap and
// `go test -bench=. -benchmem` regenerates the full evaluation.
//
// The printed rows of each figure are available through cmd/snakebench
// (e.g. `go run ./cmd/snakebench -exp fig16`); EXPERIMENTS.md records the
// paper-vs-measured comparison.
package repro_test

import (
	"sync"
	"testing"

	"snake/internal/config"
	"snake/internal/core"
	"snake/internal/harness"
	"snake/internal/prefetch"
	"snake/internal/sim"
	"snake/internal/workloads"
)

var (
	runnerOnce sync.Once
	runner     *harness.Runner
)

// sharedRunner returns the process-wide memoized experiment runner.
func sharedRunner() *harness.Runner {
	runnerOnce.Do(func() { runner = harness.NewRunner() })
	return runner
}

// runExperiment executes one harness experiment per iteration (memoized
// after the first) and reports the mean of the given column as metric.
func runExperiment(b *testing.B, id string, col int, metric string) {
	b.Helper()
	r := sharedRunner()
	exp, ok := harness.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		t, err := exp(r)
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		if col < len(last.Values) {
			b.ReportMetric(last.Values[col], metric)
		}
	}
}

// Motivational figures (baseline characterization).

func BenchmarkFig03ReservationFails(b *testing.B) { runExperiment(b, "fig3", 0, "resfail-frac") }
func BenchmarkFig04BandwidthUtil(b *testing.B)    { runExperiment(b, "fig4", 0, "bw-util") }
func BenchmarkFig05MemoryStalls(b *testing.B)     { runExperiment(b, "fig5", 0, "memstall-frac") }
func BenchmarkFig06CoverageVsIdeal(b *testing.B)  { runExperiment(b, "fig6", 4, "ideal-coverage") }
func BenchmarkFig09ChainPCFraction(b *testing.B)  { runExperiment(b, "fig9", 0, "chain-pc-frac") }
func BenchmarkFig10ChainRepetition(b *testing.B)  { runExperiment(b, "fig10", 0, "max-repetition") }
func BenchmarkFig11ChainVsMTA(b *testing.B)       { runExperiment(b, "fig11", 0, "chain-coverage") }

// Evaluation figures. Column indices follow harness.Fig16Order; "snake" is
// index 8.

func BenchmarkFig16Coverage(b *testing.B) { runExperiment(b, "fig16", 8, "snake-coverage") }
func BenchmarkFig17Accuracy(b *testing.B) { runExperiment(b, "fig17", 8, "snake-accuracy") }
func BenchmarkFig18Performance(b *testing.B) {
	runExperiment(b, "fig18", 8, "snake-speedup")
}
func BenchmarkFig19Energy(b *testing.B) { runExperiment(b, "fig19", 0, "snake-energy-norm") }
func BenchmarkFig20TailEntries(b *testing.B) {
	// Column 2 of the {3,5,10,20,unbounded} sweep is the paper's 10-entry
	// operating point.
	runExperiment(b, "fig20", 2, "coverage-at-10-entries")
}
func BenchmarkFig21StorageCost(b *testing.B) { runExperiment(b, "fig21", 2, "tail-bytes") }
func BenchmarkFig22EvictionPolicy(b *testing.B) {
	runExperiment(b, "fig22", 2, "popcount-only-coverage")
}
func BenchmarkFig23ThrottleInterval(b *testing.B) { runExperiment(b, "fig23", 0, "accuracy") }
func BenchmarkFig24Tiling(b *testing.B)           { runExperiment(b, "fig24", 0, "ipc-norm") }
func BenchmarkFig25HitRate(b *testing.B)          { runExperiment(b, "fig25", 1, "snake-hit-rate") }

// Tables.

func BenchmarkTable1Config(b *testing.B)     { runExperiment(b, "table1", 0, "num-sm") }
func BenchmarkTable2Benchmarks(b *testing.B) { runExperiment(b, "table2", 0, "loads") }
func BenchmarkTable3HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := core.DefaultCost()
		if c.HeadBytes() != 448 || c.TailBytes() != 320 {
			b.Fatalf("Table 3 drift: head=%d tail=%d", c.HeadBytes(), c.TailBytes())
		}
		b.ReportMetric(float64(c.TotalBytes()), "total-bytes")
	}
}

// Ablation benchmarks for the design decisions DESIGN.md calls out.

// benchVariant runs lps under a custom Snake configuration and reports the
// speedup over baseline.
func benchVariant(b *testing.B, key string, cfg core.Config) {
	b.Helper()
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		base, err := r.Run("lps", "baseline")
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.SnakeVariant("lps", key, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.IPC()/base.IPC(), "speedup")
		b.ReportMetric(st.Coverage(), "coverage")
	}
}

func BenchmarkAblationDecoupling(b *testing.B) {
	cfg := core.Defaults()
	cfg.DisableDecoupling = true
	benchVariant(b, "abl-nodecouple", cfg)
}

func BenchmarkAblationThrottle(b *testing.B) {
	cfg := core.Defaults()
	cfg.DisableThrottle = true
	benchVariant(b, "abl-nothrottle", cfg)
}

func BenchmarkAblationChainDepth1(b *testing.B) {
	cfg := core.Defaults()
	cfg.ChainDepth = 1
	benchVariant(b, "abl-depth1", cfg)
}

func BenchmarkAblationChainDepth8(b *testing.B) {
	cfg := core.Defaults()
	cfg.ChainDepth = 8
	benchVariant(b, "abl-depth8", cfg)
}

// BenchmarkAblationHeadColumns measures the §3.1 doubled Head-table columns
// under the greedy GTO scheduler: with a single column per row, two warps
// sharing a row thrash each other's history.
func BenchmarkAblationHeadColumns(b *testing.B) {
	cfg := core.Defaults()
	cfg.HeadSlotsPerRow = 1
	benchVariant(b, "abl-singlehead", cfg)
}

// Raw simulator throughput: simulated cycles per wall-clock second, under
// the Snake prefetcher. The noskip variant disables event-driven
// fast-forwarding (Options.DisableSkip) to expose the per-cycle cost alone;
// the ratio of lps to lps-noskip is the fast-forward speedup recorded in
// BENCH_sim.json.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cases := []struct {
		name        string
		bench       string
		disableSkip bool
	}{
		{"lps", "lps", false},
		{"mum", "mum", false},
		{"nw", "nw", false},
		{"lps-noskip", "lps", true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			k, err := workloads.Build(c.bench, workloads.Scale{CTAs: 12, WarpsPerCTA: 8, Iters: 8})
			if err != nil {
				b.Fatal(err)
			}
			cfg := config.Scaled(4, 64)
			b.ReportAllocs()
			b.ResetTimer()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(k, sim.Options{
					Config:        cfg,
					NewPrefetcher: func(int) prefetch.Prefetcher { return core.NewSnake() },
					DisableSkip:   c.disableSkip,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
