module snake

go 1.22
